#pragma once
// Client-side transaction builder for the kv layer's multi-key atomic
// commit (KvStore::txn_commit).
//
// A Txn is a WRITE BUFFER, not a lock scope: ops accumulate here with
// no store interaction at all (last write per key wins), and the whole
// batch becomes atomic only inside txn_commit.  The commit protocol —
// per-shard INTENT pairs followed by one COMMIT record on the commit
// stream, recovery installing the batch iff the commit is durable and
// every intent pair readable — lives in kv_store.hpp / recovery.hpp;
// this header is deliberately dumb so the protocol has exactly one
// home.
//
// Reads are the caller's business (read-modify-write is expressed by
// get()-ing outside and buffering the writes here; single-key RMW has
// the dedicated KvStore::cas / incr fast paths).  Aborting is simply
// dropping or clear()-ing the buffer: until txn_commit, nothing — no
// WAL record, no tracker session, no cell — exists anywhere.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wfe::txn {

/// One buffered write.  `is_remove` maps to persist::kTxnFlagRemove on
/// the wire; `value` is ignored for removes.
template <class K, class V>
struct TxnOp {
  K key;
  V value;
  bool is_remove;
};

template <class K, class V>
class Txn {
 public:
  /// Buffers an upsert; overwrites any earlier op on the same key (the
  /// transaction's effects are its FINAL per-key state — one intent
  /// pair per key keeps commit-count accounting exact).
  void put(const K& key, const V& value) { upsert(key, value, false); }

  /// Buffers a remove (applies whether or not the key exists; a remove
  /// of an absent key is a no-op at install time).
  void remove(const K& key) { upsert(key, V{}, true); }

  void clear() {
    ops_.clear();
    index_.clear();
  }

  std::size_t size() const noexcept { return ops_.size(); }
  bool empty() const noexcept { return ops_.empty(); }

  const std::vector<TxnOp<K, V>>& ops() const noexcept { return ops_; }

 private:
  void upsert(const K& key, const V& value, bool is_remove) {
    const auto [it, fresh] = index_.try_emplace(key, ops_.size());
    if (fresh)
      ops_.push_back({key, value, is_remove});
    else
      ops_[it->second] = {key, value, is_remove};
  }

  std::vector<TxnOp<K, V>> ops_;
  std::unordered_map<K, std::size_t> index_;  ///< key -> ops_ position
};

}  // namespace wfe::txn
