#pragma once
// Workload specification mirroring the paper's evaluation (§5):
//  * write-dominated: 50% insert() / 50% remove(),
//  * read-mostly:     90% get() / 10% put(),
//  * queues:          50% enqueue() / 50% dequeue(),
// keys drawn uniformly from (0, key_range), structures prefilled with
// `prefill` elements before timing starts.

#include <cstdint>
#include <string>

#include "util/random.hpp"

namespace wfe::harness {

enum class OpMix {
  kWrite5050,  ///< 50% insert, 50% remove
  kRead9010,   ///< 90% get, 10% put
  kQueue5050,  ///< 50% enqueue, 50% dequeue
};

inline const char* mix_name(OpMix mix) noexcept {
  switch (mix) {
    case OpMix::kWrite5050: return "50% insert / 50% remove";
    case OpMix::kRead9010: return "90% get / 10% put";
    case OpMix::kQueue5050: return "50% enqueue / 50% dequeue";
  }
  return "?";
}

struct Workload {
  OpMix mix = OpMix::kWrite5050;
  std::uint64_t key_range = 100000;  ///< keys uniform in (0, key_range)
  std::uint64_t prefill = 50000;     ///< elements inserted before timing
  /// Read-mostly mixes only: route upserts through the in-place path
  /// (value-cell CAS: put()) instead of whole-node replacement
  /// (remove+insert: put_copy()).  Figure benches sweep this via
  /// WFE_BENCH_UPSERT_LIST.
  bool upsert_inplace = false;
};

/// One operation against a key-value structure (list / hash map / BST).
/// `S` needs insert/remove/get/put taking (key, value, tid) / (key, tid).
template <class S>
void kv_op(S& s, const Workload& w, util::Xoshiro256& rng, unsigned tid) {
  const std::uint64_t key = rng.next_bounded(w.key_range) + 1;
  switch (w.mix) {
    case OpMix::kWrite5050:
      if (rng.percent(50)) {
        s.insert(key, key, tid);
      } else {
        s.remove(key, tid);
      }
      break;
    case OpMix::kRead9010:
      if (rng.percent(90)) {
        s.get(key, tid);
      } else if constexpr (requires { s.put_copy(key, key, tid); }) {
        // The paper's read-mostly figures (9-11) measured remove+insert
        // upserts, preserved as put_copy().  Every KV structure — list,
        // hash map, and (since the tombstone refactor) the BST — also
        // has an in-place put() that CASes the leaf's value cell; the
        // workload knob picks which path the figure row measures.
        if (w.upsert_inplace) {
          s.put(key, key, tid);
        } else {
          s.put_copy(key, key, tid);
        }
      } else {
        s.put(key, key, tid);
      }
      break;
    case OpMix::kQueue5050:
      break;  // not a KV mix
  }
}

/// One operation against a queue (`enqueue`/`dequeue` taking tid).
template <class Q>
void queue_op(Q& q, const Workload& w, util::Xoshiro256& rng, unsigned tid) {
  if (rng.percent(50)) {
    q.enqueue(rng.next_bounded(w.key_range) + 1, tid);
  } else {
    q.dequeue(tid);
  }
}

}  // namespace wfe::harness
