#pragma once
// Timed multi-thread benchmark driver.
//
// Methodology follows §5 of the paper: prefill, run a fixed wall-clock
// duration with all threads hammering the structure, report
// Mops/second and the average number of unreclaimed objects (sampled
// periodically by the coordinating thread), repeated `repeats` times.
// Durations/repeats are scaled down by default for CI hosts and can be
// restored to the paper's 10s x 5 via WFE_BENCH_SECONDS / _REPEATS.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "util/affinity.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace wfe::harness {

struct RunConfig {
  unsigned threads = 4;
  double seconds = 0.5;
  unsigned repeats = 1;
  bool pin_threads = true;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct RunResult {
  double mops = 0.0;              ///< mean across repeats
  double mops_stddev = 0.0;
  double avg_unreclaimed = 0.0;   ///< mean of periodic samples
};

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}
inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// Runs `op(rng, tid)` on `cfg.threads` threads for `cfg.seconds`,
/// sampling `unreclaimed()` from the coordinator.  `op` must be
/// re-entrant per tid; `unreclaimed` is any callable returning uint64.
template <class Op, class Unreclaimed>
RunResult run_timed(const RunConfig& cfg, Op&& op, Unreclaimed&& unreclaimed) {
  util::Samples mops_samples;
  util::Samples unreclaimed_samples;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> stop{false};
    util::SpinBarrier barrier(cfg.threads + 1);
    std::vector<util::Padded<std::uint64_t>> op_counts(cfg.threads);
    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);

    for (unsigned t = 0; t < cfg.threads; ++t) {
      workers.emplace_back([&, t] {
        if (cfg.pin_threads) util::pin_to_cpu(t);
        util::Xoshiro256 rng(cfg.seed + rep * 1315423911ull + t);
        barrier.arrive_and_wait();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          op(rng, t);
          ++local;
        }
        op_counts[t].value = local;
      });
    }

    barrier.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration<double>(cfg.seconds);
    // Sample the unreclaimed-object count while the clock runs (the
    // paper's memory metric is an average over the run, not a final
    // snapshot, so bursts between cleanup scans are visible).
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      unreclaimed_samples.add(static_cast<double>(unreclaimed()));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    std::uint64_t total_ops = 0;
    for (auto& c : op_counts) total_ops += c.value;
    mops_samples.add(static_cast<double>(total_ops) / elapsed.count() / 1e6);
  }

  return {mops_samples.mean(), mops_samples.stddev(), unreclaimed_samples.mean()};
}

/// Thread-count sweep parsed from WFE_BENCH_THREAD_LIST ("1,2,4,8") or
/// defaulted to powers of two up to 2x the hardware concurrency (the
/// paper sweeps 1..120 on a 96-core box; oversubscription by 2x retains
/// the preempted-reservation-holder regime its memory plots rely on).
inline std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> out;
  if (const char* env = std::getenv("WFE_BENCH_THREAD_LIST")) {
    unsigned cur = 0;
    bool have = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + static_cast<unsigned>(*p - '0');
        have = true;
      } else {
        if (have && cur > 0) out.push_back(cur);
        cur = 0;
        have = false;
        if (*p == '\0') break;
      }
    }
    if (!out.empty()) return out;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 1; t <= 2 * hw; t *= 2) out.push_back(t);
  if (out.back() != 2 * hw) out.push_back(2 * hw);
  return out;
}

}  // namespace wfe::harness
