#pragma once
// Shared driver for the per-figure benchmark binaries (bench/bench_fig*).
//
// Each binary names a figure from the paper, a data-structure factory and
// an operation mix; this header sweeps thread counts x reclamation
// schemes and prints the two series every figure in §5 reports:
// throughput (Mops/s) and average unreclaimed objects.
//
// Environment knobs:
//   WFE_BENCH_SECONDS      run duration per data point (default 0.5; paper: 10)
//   WFE_BENCH_REPEATS      repeats per data point       (default 1; paper: 5)
//   WFE_BENCH_THREAD_LIST  comma list, e.g. "1,8,16,24" (default: pow2 sweep)
//   WFE_BENCH_PREFILL      prefill elements             (default 50000, as paper)
//   WFE_BENCH_KEY_RANGE    key range                    (default 100000, as paper)
//   WFE_BENCH_JSON         if set: also write the series to this path as
//                          JSON (same row format as BENCH_kv.json, so all
//                          benches feed one perf trajectory)
//   WFE_BENCH_UPSERT_LIST  read-mostly KV figures only: comma list of
//                          upsert paths to sweep, from {copy, inplace}
//                          (default "copy", the paper's remove+insert
//                          semantics; "inplace" CASes the value cell)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/wfe.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/he.hpp"
#include "reclaim/hp.hpp"
#include "reclaim/ibr.hpp"
#include "reclaim/leak.hpp"
#include "util/json.hpp"

namespace wfe::harness {

/// Applies `fn.operator()<Tracker>()` to every scheme in the paper's
/// comparison set, in the paper's legend order.
template <class Fn>
void for_each_tracker(Fn&& fn) {
  fn.template operator()<core::WfeTracker>();
  fn.template operator()<reclaim::EbrTracker>();
  fn.template operator()<reclaim::HeTracker>();
  fn.template operator()<reclaim::HpTracker>();
  fn.template operator()<reclaim::IbrTracker>();
  fn.template operator()<reclaim::LeakTracker>();
}

struct FigureSpec {
  const char* figure;   ///< e.g. "Fig 6"
  const char* ds_name;  ///< e.g. "Linked List"
  Workload workload;
  bool is_queue = false;
  unsigned slots_needed = 5;  ///< max_hes for the trackers
};

namespace detail {

struct Series {
  std::vector<double> mops;
  std::vector<double> unreclaimed;
};

inline void print_table(const char* title, const std::vector<unsigned>& threads,
                        const std::vector<std::string>& schemes,
                        const std::map<std::string, Series>& data, bool second) {
  std::printf("%s\n", title);
  std::printf("%8s", "threads");
  for (const auto& s : schemes) std::printf("%12s", s.c_str());
  std::printf("\n");
  for (std::size_t row = 0; row < threads.size(); ++row) {
    std::printf("%8u", threads[row]);
    for (const auto& s : schemes) {
      const Series& ser = data.at(s);
      const double v = second ? ser.unreclaimed[row] : ser.mops[row];
      std::printf(second ? "%12.1f" : "%12.3f", v);
    }
    std::printf("\n");
  }
}

}  // namespace detail

/// `Factory::operator()<TR>(TR&) -> std::unique_ptr<DS>` builds the
/// structure under test; prefill and per-op dispatch are chosen by
/// `spec.is_queue`.
template <class Factory>
int run_figure(const FigureSpec& spec, Factory&& factory) {
  Workload w = spec.workload;
  w.prefill = static_cast<std::uint64_t>(
      env_long("WFE_BENCH_PREFILL", static_cast<long>(w.prefill)));
  w.key_range = static_cast<std::uint64_t>(
      env_long("WFE_BENCH_KEY_RANGE", static_cast<long>(w.key_range)));

  RunConfig rc;
  rc.seconds = env_double("WFE_BENCH_SECONDS", 0.5);
  rc.repeats = static_cast<unsigned>(env_long("WFE_BENCH_REPEATS", 1));

  const std::vector<unsigned> threads = thread_sweep();

  // Upsert-path sweep (read-mostly KV mixes only): every other mix has a
  // single, knob-free row set.
  std::vector<std::string> upserts{"copy"};
  if (!Factory::kIsQueue && w.mix == OpMix::kRead9010) {
    if (const char* env = std::getenv("WFE_BENCH_UPSERT_LIST")) {
      upserts.clear();
      std::string list(env), item;
      for (std::size_t i = 0; i <= list.size(); ++i) {
        if (i == list.size() || list[i] == ',') {
          if (item == "copy" || item == "inplace") upserts.push_back(item);
          item.clear();
        } else {
          item += list[i];
        }
      }
      if (upserts.empty()) upserts.push_back("copy");
    }
  }

  struct Row {
    std::string upsert, tracker;
    unsigned threads;
    double mops, unreclaimed;
  };
  std::vector<Row> rows;

  for (const std::string& up : upserts) {
  w.upsert_inplace = (up == "inplace");
  std::vector<std::string> schemes;
  std::map<std::string, detail::Series> data;

  for_each_tracker([&]<class TR>() {
    schemes.emplace_back(TR::name());
    detail::Series series;
    for (unsigned t : threads) {
      reclaim::TrackerConfig cfg;
      cfg.max_threads = t;
      cfg.max_hes = spec.slots_needed;
      TR tracker(cfg);
      auto ds = factory.template operator()<TR>(tracker);
      // Prefill (paper: 50K elements before each measurement).
      util::Xoshiro256 rng(42);
      if constexpr (Factory::kIsQueue) {
        for (std::uint64_t i = 0; i < w.prefill; ++i)
          ds->enqueue(rng.next_bounded(w.key_range) + 1, 0);
      } else {
        std::uint64_t inserted = 0;
        while (inserted < w.prefill)
          inserted += ds->insert(rng.next_bounded(w.key_range) + 1,
                                 /*value=*/inserted, 0)
                          ? 1
                          : 0;
      }
      rc.threads = t;
      RunResult r = run_timed(
          rc,
          [&](util::Xoshiro256& g, unsigned tid) {
            if constexpr (Factory::kIsQueue) {
              queue_op(*ds, w, g, tid);
            } else {
              kv_op(*ds, w, g, tid);
            }
          },
          [&] { return tracker.unreclaimed(); });
      series.mops.push_back(r.mops);
      series.unreclaimed.push_back(r.avg_unreclaimed);
    }
    data.emplace(TR::name(), std::move(series));
  });

  std::printf("=== %s — %s (%s%s) ===\n", spec.figure, spec.ds_name,
              mix_name(w.mix),
              upserts.size() > 1 || w.upsert_inplace
                  ? (w.upsert_inplace ? ", upsert=inplace" : ", upsert=copy")
                  : "");
  std::printf("prefill=%llu key_range=%llu seconds=%.2f repeats=%u\n",
              static_cast<unsigned long long>(w.prefill),
              static_cast<unsigned long long>(w.key_range), rc.seconds,
              rc.repeats);
  detail::print_table("throughput (Mops/s):", threads, schemes, data, false);
  detail::print_table("avg unreclaimed objects:", threads, schemes, data, true);
  std::printf("\n");

  for (const auto& s : schemes) {
    const detail::Series& ser = data.at(s);
    for (std::size_t row = 0; row < threads.size(); ++row)
      rows.push_back({up, s, threads[row], ser.mops[row], ser.unreclaimed[row]});
  }
  }  // upsert sweep

  if (const char* json_path = std::getenv("WFE_BENCH_JSON")) {
    util::JsonWriter j;
    j.begin_object();
    j.kv("bench", spec.figure);
    j.kv("ds", spec.ds_name);
    j.kv("mix", mix_name(w.mix));
    j.kv("prefill", w.prefill);
    j.kv("key_range", w.key_range);
    j.kv("seconds", rc.seconds);
    j.kv("repeats", rc.repeats);
    j.key("results").begin_array();
    for (const Row& r : rows) {
      j.begin_object();
      j.kv("tracker", r.tracker.c_str());
      j.kv("threads", r.threads);
      j.kv("upsert", r.upsert.c_str());
      j.kv("mops", r.mops);
      j.kv("avg_unreclaimed", r.unreclaimed);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    if (!j.write_file(json_path))
      std::fprintf(stderr, "WFE_BENCH_JSON: cannot write %s\n", json_path);
  }
  return 0;
}

}  // namespace wfe::harness
