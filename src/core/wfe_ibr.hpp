#pragma once
// Wait-Free 2GEIBR — the extension the paper explicitly scopes out as
// feasible (§2.4): "our approach is applicable to the 2GEIBR version
// where only hazardous reference accesses need to be made wait-free."
//
// 2GEIBR (reclaim/ibr.hpp) keeps one reservation *interval* [lower,
// upper] per thread; its read protocol grows `upper` with the same
// publish/validate loop as Hazard Eras — and is therefore only
// lock-free.  This tracker grafts WFE's fast-path/slow-path helping onto
// that loop:
//  * fast path: identical to 2GEIBR's read (bounded attempts);
//  * slow path: the thread opens a help request ({invptr, tag} in its
//    state slot); era-incrementing threads (alloc/retire) serve every
//    open request before advancing the clock, installing {pointer, era}
//    and raising the requester's `upper` on its behalf;
//  * per-thread tags (in the upper-half pair) number slow-path cycles
//    and kill delayed helper updates, exactly as in WFE (paper §3.2);
//  * helpers pin the request's parent block and the dereferenced block
//    through two internal era-point reservations, and cleanup() scans in
//    the Lemma 4/5 discipline.
//
// One request slot per thread suffices (2GEIBR has one interval per
// thread, not one per reservation index), which simplifies Fig. 4's
// state array to a vector.

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "reclaim/block.hpp"
#include "reclaim/tracker.hpp"
#include "util/atomics.hpp"
#include "util/cacheline.hpp"

namespace wfe::core {

class WfeIbrTracker : public reclaim::TrackerBase {
  using Block = reclaim::Block;
  static constexpr std::uint64_t kInfEra = reclaim::kInfEra;
  static constexpr std::uintptr_t kInvPtr = reclaim::kInvPtr;

 public:
  explicit WfeIbrTracker(const reclaim::TrackerConfig& cfg)
      : TrackerBase(cfg), slots_(cfg.max_threads) {
    for (unsigned t = 0; t < cfg.max_threads; ++t) {
      auto& s = slots_[t];
      s.lower.store_pair({kInfEra, 0}, std::memory_order_relaxed);
      s.upper.store_pair({kInfEra, 0}, std::memory_order_relaxed);
      s.parent_resv.store_pair({kInfEra, 0}, std::memory_order_relaxed);
      s.handover_resv.store_pair({kInfEra, 0}, std::memory_order_relaxed);
    }
  }
  ~WfeIbrTracker() { drain_all_unsafe(); }

  static constexpr const char* name() noexcept { return "WFE-IBR"; }

  void begin_op(unsigned tid) noexcept {
    const std::uint64_t e = global_era_.value.load(std::memory_order_seq_cst);
    slots_[tid].lower.store_a(e, std::memory_order_seq_cst);
    slots_[tid].upper.store_a(e, std::memory_order_seq_cst);
  }

  void end_op(unsigned tid) noexcept {
    slots_[tid].lower.store_a(kInfEra, std::memory_order_release);
    slots_[tid].upper.store_a(kInfEra, std::memory_order_release);
  }

  void clear_slot(unsigned, unsigned) noexcept {}
  void copy_slot(unsigned, unsigned, unsigned) noexcept {}

  /// 2GEIBR read made wait-free: grow `upper` until stable, else request
  /// helping.  `idx` is accepted for interface compatibility and ignored
  /// (reservations are per-thread intervals).
  std::uintptr_t protect_word(const std::atomic<std::uintptr_t>& src, unsigned /*idx*/,
                              unsigned tid, const Block* parent = nullptr) noexcept {
    Slots& my = slots_[tid];
    std::uint64_t prev_era = my.upper.load_a(std::memory_order_acquire);

    unsigned attempts = cfg_.force_slow_path ? 0 : cfg_.fast_path_attempts;
    while (attempts-- != 0) {  // fast path == 2GEIBR's read
      const std::uintptr_t ret = src.load(std::memory_order_acquire);
      const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
      if (prev_era == new_era) return ret;
      my.upper.store_a(new_era, std::memory_order_seq_cst);
      prev_era = new_era;
    }

    // Slow path: request helping (Fig. 4 lines 26-54, one slot/thread).
    const std::uint64_t probe_t0 =
        slow_path_hist_ != nullptr ? obs::now_ticks() : 0;
    const std::uint64_t parent_era = parent ? parent->alloc_era : kInfEra;
    counter_start_.value.fetch_add(1, std::memory_order_seq_cst);
    my.state.pointer.store(&src, std::memory_order_relaxed);
    my.state.era.store(parent_era, std::memory_order_relaxed);
    const std::uint64_t tag = my.upper.load_b(std::memory_order_relaxed);
    my.state.result.store_pair({kInvPtr, tag}, std::memory_order_seq_cst);

    util::Pair res;
    for (;;) {
      const std::uintptr_t ret = src.load(std::memory_order_acquire);
      const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
      if (prev_era == new_era) {
        util::Pair expect{kInvPtr, tag};
        if (my.state.result.wcas(expect, {0, kInfEra})) {
          my.upper.store_b(tag + 1, std::memory_order_seq_cst);
          counter_end_.value.fetch_add(1, std::memory_order_seq_cst);
          finish_slow_probe(probe_t0, tid);
          return ret;
        }
      }
      my.upper.wcas_discard({prev_era, tag}, {new_era, tag});
      prev_era = new_era;
      res = my.state.result.load_pair(std::memory_order_seq_cst);
      if (res.a != kInvPtr) break;
    }
    my.upper.store_a(res.b, std::memory_order_seq_cst);
    my.upper.store_b(tag + 1, std::memory_order_seq_cst);
    counter_end_.value.fetch_add(1, std::memory_order_seq_cst);
    finish_slow_probe(probe_t0, tid);
    return static_cast<std::uintptr_t>(res.a);
  }

  template <class T>
  T* protect(const std::atomic<T*>& src, unsigned idx, unsigned tid,
             const Block* parent = nullptr) noexcept {
    return reinterpret_cast<T*>(protect_word(
        reinterpret_cast<const std::atomic<std::uintptr_t>&>(src), idx, tid, parent));
  }

  template <class T, class... Args>
  T* alloc(unsigned tid, Args&&... args) {
    auto& td = threads_[tid];
    if (td.alloc_since_bump++ % cfg_.era_freq == 0) increment_era(tid);
    T* node = reclaim::construct_block<T>(std::forward<Args>(args)...);
    node->alloc_era = global_era_.value.load(std::memory_order_seq_cst);  // birth
    count_alloc(tid);
    return node;
  }

  void retire(Block* b, unsigned tid) noexcept {
    b->retire_era = global_era_.value.load(std::memory_order_seq_cst);
    push_retired(b, tid);
    auto& td = threads_[tid];
    if (++td.retire_since_scan % cfg_.cleanup_freq == 0) {
      if (b->retire_era == global_era_.value.load(std::memory_order_seq_cst))
        increment_era(tid);
      cleanup(tid);
    }
  }

  void flush(unsigned tid) noexcept { cleanup(tid); }

  std::uint64_t era() const noexcept {
    return global_era_.value.load(std::memory_order_acquire);
  }
  std::uint64_t slow_path_entries() const noexcept {
    return counter_start_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_path_exits() const noexcept {
    return counter_end_.value.load(std::memory_order_relaxed);
  }

  /// Latency probe for slow-path episodes (same contract as
  /// WfeTracker::set_slow_path_probe).
  void set_slow_path_probe(obs::LatencyHistogram* h) noexcept {
    slow_path_hist_ = h;
  }

 private:
  struct SlowState {
    util::AtomicPair result{util::Pair{0, kInfEra}};
    std::atomic<std::uint64_t> era{kInfEra};
    std::atomic<const std::atomic<std::uintptr_t>*> pointer{nullptr};
  };

  struct Slots {
    util::AtomicPair lower;          ///< .a = interval lower bound
    util::AtomicPair upper;          ///< .a = interval upper bound, .b = tag
    util::AtomicPair parent_resv;    ///< era point pinning a request's parent
    util::AtomicPair handover_resv;  ///< era point pinning a helped read
    SlowState state;                 ///< single help-request slot
  };

  void increment_era(unsigned tid) noexcept {
    const std::uint64_t ce = counter_end_.value.load(std::memory_order_seq_cst);
    const std::uint64_t cs = counter_start_.value.load(std::memory_order_seq_cst);
    if (cs != ce) {
      for (unsigned i = 0; i < cfg_.max_threads; ++i) {
        if (slots_[i].state.result.load_a(std::memory_order_seq_cst) == kInvPtr)
          help_thread(i, tid);
      }
    }
    global_era_.value.fetch_add(1, std::memory_order_seq_cst);
  }

  void help_thread(unsigned i, unsigned tid) noexcept {
    SlowState& st = slots_[i].state;
    util::Pair res = st.result.load_pair(std::memory_order_seq_cst);
    if (res.a != kInvPtr) return;

    const std::uint64_t parent_era = st.era.load(std::memory_order_acquire);
    util::AtomicPair& parent_rsv = slots_[tid].parent_resv;
    parent_rsv.store_a(parent_era, std::memory_order_seq_cst);

    const std::atomic<std::uintptr_t>* ptr = st.pointer.load(std::memory_order_acquire);
    const std::uint64_t tag = slots_[i].upper.load_b(std::memory_order_seq_cst);
    if (tag == res.b) {
      util::AtomicPair& handover_rsv = slots_[tid].handover_resv;
      std::uint64_t prev_era = global_era_.value.load(std::memory_order_seq_cst);
      do {
        handover_rsv.store_a(prev_era, std::memory_order_seq_cst);
        const std::uintptr_t ret = ptr->load(std::memory_order_acquire);
        const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
        if (prev_era == new_era) {
          util::Pair expect = res;
          if (st.result.wcas(expect, {ret, new_era})) {
            for (;;) {  // at most 2 iterations (Lemma 3)
              util::Pair old = slots_[i].upper.load_pair(std::memory_order_seq_cst);
              if (old.b != tag) break;
              if (slots_[i].upper.wcas(old, {new_era, tag + 1})) break;
            }
          }
          break;
        }
        prev_era = new_era;
      } while (st.result.load_pair(std::memory_order_seq_cst) == res);
      handover_rsv.store_a(kInfEra, std::memory_order_seq_cst);
    }
    parent_rsv.store_a(kInfEra, std::memory_order_seq_cst);
  }

  /// Lemma 4/5 scanning discipline over interval + point reservations.
  void cleanup(unsigned tid) noexcept {
    sweep_retired(tid, [this](const Block* b) {
      const std::uint64_t ce = counter_end_.value.load(std::memory_order_seq_cst);
      if (!intervals_allow(b) || !points_allow(b, &Slots::parent_resv)) return false;
      if (ce == counter_start_.value.load(std::memory_order_seq_cst)) return true;
      return points_allow(b, &Slots::handover_resv) && intervals_allow(b);
    });
  }

  bool intervals_allow(const Block* b) const noexcept {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      const std::uint64_t lo = slots_[t].lower.load_a(std::memory_order_seq_cst);
      if (lo == kInfEra) continue;
      const std::uint64_t up = slots_[t].upper.load_a(std::memory_order_seq_cst);
      const bool disjoint = b->alloc_era > up || b->retire_era < lo;
      if (!disjoint) return false;
    }
    return true;
  }

  bool points_allow(const Block* b, util::AtomicPair Slots::* resv) const noexcept {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      const std::uint64_t e = (slots_[t].*resv).load_a(std::memory_order_seq_cst);
      if (reclaim::era_overlaps(b, e)) return false;
    }
    return true;
  }

  void finish_slow_probe(std::uint64_t t0, unsigned tid) noexcept {
    if (slow_path_hist_ == nullptr) return;
    obs::tls_cause = obs::TraceCause::kSlowPath;
    slow_path_hist_->record_owned(obs::ticks_to_ns(obs::now_ticks() - t0), tid);
  }

  reclaim::detail::PerThread<Slots> slots_;
  util::Padded<std::atomic<std::uint64_t>> global_era_{1};
  util::Padded<std::atomic<std::uint64_t>> counter_start_{0};
  util::Padded<std::atomic<std::uint64_t>> counter_end_{0};
  obs::LatencyHistogram* slow_path_hist_ = nullptr;  ///< null = unprobed
};

static_assert(reclaim::tracker_for<WfeIbrTracker>);

}  // namespace wfe::core
