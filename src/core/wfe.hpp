#pragma once
// Wait-Free Eras (WFE) — the paper's contribution (Figure 4).
//
// WFE runs Hazard Eras unchanged on the fast path.  When protect() fails
// to observe a stable global era within `fast_path_attempts` tries, the
// thread publishes a *help request* and enters the slow path.  The key
// invariant (paper §3.3): alloc() and retire() never advance the global
// era while an unserved help request exists — increment_era() first helps
// every requester (help_thread()), so slow-path loops are bounded by the
// number of in-flight incrementers (Lemmas 1-3) and every operation is
// wait-free bounded (Theorems 1-3).
//
// Data layout (paper §3.2, Fig. 3):
//  * reservations[tid][0..max_hes+1]: {era, tag} pairs.  Slots
//    [0, max_hes) are the application's; slots max_hes ("parent") and
//    max_hes+1 ("handover") are internal to help_thread().  The tag half
//    identifies the slow-path cycle and increases monotonically, killing
//    delayed (ABA) updates from stale helpers.
//  * state[tid][0..max_hes): one slow-path request slot per reservation:
//      result  — {pointer, era} pair; {invptr, tag} while a request is
//                open, {value, era} once served (or {nullptr, ∞} when the
//                owner cancels after succeeding on its own);
//      era     — the parent block's alloc_era, pinning the parent for
//                helpers (Lemma 4);
//      pointer — address of the hazardous std::atomic the helper must read.
//  * counter_start/counter_end — F&A counters; cs != ce means requests may
//    be open, and cs moving means new requesters arrived (used by the
//    cleanup() scanning discipline, Lemma 5 / Theorem 4).
//
// API deviation from HE (paper §3.4): protect() takes the *parent* block
// containing the hazardous reference (nullptr for roots), so helpers can
// pin it while they dereference on the requester's behalf.

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "reclaim/block.hpp"
#include "reclaim/tracker.hpp"
#include "util/atomics.hpp"
#include "util/cacheline.hpp"

namespace wfe::core {

using reclaim::Block;
using reclaim::kInfEra;
using reclaim::kInvPtr;
using reclaim::TrackerConfig;

class WfeTracker : public reclaim::TrackerBase {
 public:
  explicit WfeTracker(const TrackerConfig& cfg)
      : TrackerBase(cfg), slots_(cfg.max_threads) {
    for (unsigned t = 0; t < cfg.max_threads; ++t) {
      auto& s = slots_[t];
      s.resv = std::make_unique<util::AtomicPair[]>(cfg.max_hes + 2);
      for (unsigned j = 0; j < cfg.max_hes + 2; ++j)
        s.resv[j].store_pair({kInfEra, 0}, std::memory_order_relaxed);
      s.state = std::make_unique<SlowState[]>(cfg.max_hes);
    }
  }
  ~WfeTracker() { drain_all_unsafe(); }

  static constexpr const char* name() noexcept { return "WFE"; }

  void begin_op(unsigned) noexcept {}

  /// clear(): reset all application reservations; tags (the .B halves)
  /// must survive — they number slow-path cycles across operations.
  void end_op(unsigned tid) noexcept {
    for (unsigned j = 0; j < cfg_.max_hes; ++j)
      slots_[tid].resv[j].store_a(kInfEra, std::memory_order_release);
  }

  void clear_slot(unsigned idx, unsigned tid) noexcept {
    slots_[tid].resv[idx].store_a(kInfEra, std::memory_order_release);
  }

  /// Slot `to` takes over protecting the era slot `from` holds.  Only the
  /// era half is copied — the tag half numbers `to`'s own slow-path
  /// cycles and must not be disturbed.
  void copy_slot(unsigned from, unsigned to, unsigned tid) noexcept {
    slots_[tid].resv[to].store_a(slots_[tid].resv[from].load_a(std::memory_order_relaxed),
                                 std::memory_order_seq_cst);
  }

  /// get_protected() — Fig. 4 lines 12-54.  `parent` is the block that
  /// physically contains `src` (nullptr when `src` is a data-structure
  /// root), needed so a helper can pin it via its alloc_era.
  std::uintptr_t protect_word(const std::atomic<std::uintptr_t>& src, unsigned idx,
                              unsigned tid, const Block* parent = nullptr) noexcept {
    util::AtomicPair& rsv = slots_[tid].resv[idx];
    std::uint64_t prev_era = rsv.load_a(std::memory_order_acquire);

    // ---- fast path: identical to Hazard Eras (lines 16-24) ----
    unsigned attempts = cfg_.force_slow_path ? 0 : cfg_.fast_path_attempts;
    while (attempts-- != 0) {
      const std::uintptr_t ret = src.load(std::memory_order_acquire);
      const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
      if (prev_era == new_era) return ret;
      rsv.store_a(new_era, std::memory_order_seq_cst);
      prev_era = new_era;
    }

    // ---- slow path: request helping (lines 26-54) ----
    const std::uint64_t probe_t0 =
        slow_path_hist_ != nullptr ? obs::now_ticks() : 0;
    const std::uint64_t parent_era = parent ? parent->alloc_era : kInfEra;
    counter_start_.value.fetch_add(1, std::memory_order_seq_cst);

    SlowState& st = slots_[tid].state[idx];
    st.pointer.store(&src, std::memory_order_relaxed);
    st.era.store(parent_era, std::memory_order_relaxed);
    const std::uint64_t tag = rsv.load_b(std::memory_order_relaxed);
    // Publishing {invptr, tag} opens the request; the seq_cst store
    // releases pointer/era above to helpers.
    st.result.store_pair({kInvPtr, tag}, std::memory_order_seq_cst);

    util::Pair res;  // result observed once produced
    for (;;) {       // bounded by the number of in-flight threads (Lemma 1)
      const std::uintptr_t ret = src.load(std::memory_order_acquire);
      const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
      if (prev_era == new_era) {
        // Cancel the request: flip result back to a benign value.
        util::Pair expect{kInvPtr, tag};
        if (st.result.wcas(expect, {0, kInfEra})) {
          rsv.store_b(tag + 1, std::memory_order_seq_cst);  // next cycle
          counter_end_.value.fetch_add(1, std::memory_order_seq_cst);
          finish_slow_probe(probe_t0, tid);
          return ret;
        }
        // WCAS failed: a helper produced the output first — consume it.
      }
      // Keep our era reservation current; failure means a helper already
      // wrote the final {era, tag+1}, which the exit path will honour.
      rsv.wcas_discard({prev_era, tag}, {new_era, tag});
      prev_era = new_era;
      res = st.result.load_pair(std::memory_order_seq_cst);
      if (res.a != kInvPtr) break;
    }

    // A helper served us: adopt its {pointer, era} output (lines 50-54).
    // The helper may have installed the reservation already; writing the
    // same era again is harmless.
    rsv.store_a(res.b, std::memory_order_seq_cst);
    rsv.store_b(tag + 1, std::memory_order_seq_cst);
    counter_end_.value.fetch_add(1, std::memory_order_seq_cst);
    finish_slow_probe(probe_t0, tid);
    return static_cast<std::uintptr_t>(res.a);
  }

  template <class T>
  T* protect(const std::atomic<T*>& src, unsigned idx, unsigned tid,
             const Block* parent = nullptr) noexcept {
    return reinterpret_cast<T*>(protect_word(
        reinterpret_cast<const std::atomic<std::uintptr_t>&>(src), idx, tid, parent));
  }

  /// alloc_block() — Fig. 4 lines 69-75.
  template <class T, class... Args>
  T* alloc(unsigned tid, Args&&... args) {
    auto& td = threads_[tid];
    if (td.alloc_since_bump++ % cfg_.era_freq == 0) increment_era(tid);
    T* node = reclaim::construct_block<T>(std::forward<Args>(args)...);
    node->alloc_era = global_era_.value.load(std::memory_order_seq_cst);
    count_alloc(tid);
    return node;
  }

  /// retire() — Fig. 4 lines 77-85.
  void retire(Block* b, unsigned tid) noexcept {
    b->retire_era = global_era_.value.load(std::memory_order_seq_cst);
    push_retired(b, tid);
    auto& td = threads_[tid];
    if (++td.retire_since_scan % cfg_.cleanup_freq == 0) {
      if (b->retire_era == global_era_.value.load(std::memory_order_seq_cst))
        increment_era(tid);
      cleanup(tid);
    }
  }

  void flush(unsigned tid) noexcept { cleanup(tid); }

  std::uint64_t era() const noexcept {
    return global_era_.value.load(std::memory_order_acquire);
  }

  // Observability for tests/benches: how many slow-path entries/exits.
  std::uint64_t slow_path_entries() const noexcept {
    return counter_start_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_path_exits() const noexcept {
    return counter_end_.value.load(std::memory_order_relaxed);
  }

  /// Attaches a latency histogram to the slow path (src/obs/): each
  /// request-helping episode records its duration on the caller's lane,
  /// making the paper's fast-path/help contrast visible per-op.  The
  /// slow path is rare by construction, so the probe's clock reads cost
  /// nothing on the HE-speed fast path.
  void set_slow_path_probe(obs::LatencyHistogram* h) noexcept {
    slow_path_hist_ = h;
  }

 private:
  struct SlowState {
    util::AtomicPair result{util::Pair{0, kInfEra}};  // {nullptr, ∞}
    std::atomic<std::uint64_t> era{kInfEra};
    std::atomic<const std::atomic<std::uintptr_t>*> pointer{nullptr};
  };

  struct Slots {
    std::unique_ptr<util::AtomicPair[]> resv;  // max_hes + 2 entries
    std::unique_ptr<SlowState[]> state;        // max_hes entries
  };

  /// increment_era() — Fig. 4 lines 87-98: help every open request, then
  /// (and only then) advance the clock.
  void increment_era(unsigned tid) noexcept {
    const std::uint64_t ce = counter_end_.value.load(std::memory_order_seq_cst);
    const std::uint64_t cs = counter_start_.value.load(std::memory_order_seq_cst);
    if (cs != ce) {
      for (unsigned i = 0; i < cfg_.max_threads; ++i) {
        for (unsigned j = 0; j < cfg_.max_hes; ++j) {
          if (slots_[i].state[j].result.load_a(std::memory_order_seq_cst) == kInvPtr)
            help_thread(i, j, tid);
        }
      }
    }
    global_era_.value.fetch_add(1, std::memory_order_seq_cst);
  }

  /// help_thread() — Fig. 4 lines 100-134: dereference the requester's
  /// hazardous pointer on its behalf and hand over a reservation.
  void help_thread(unsigned i, unsigned j, unsigned tid) noexcept {
    SlowState& st = slots_[i].state[j];
    util::Pair res = st.result.load_pair(std::memory_order_seq_cst);
    if (res.a != kInvPtr) return;

    // Pin the requester's parent block before touching its interior
    // pointer (Lemma 4; first internal reservation).
    const std::uint64_t parent_era = st.era.load(std::memory_order_acquire);
    util::AtomicPair& parent_rsv = slots_[tid].resv[cfg_.max_hes];
    parent_rsv.store_a(parent_era, std::memory_order_seq_cst);

    const std::atomic<std::uintptr_t>* ptr = st.pointer.load(std::memory_order_acquire);
    const std::uint64_t tag = slots_[i].resv[j].load_b(std::memory_order_seq_cst);
    if (tag == res.b) {
      // All state fields were read consistently; serve the request.
      util::AtomicPair& handover_rsv = slots_[tid].resv[cfg_.max_hes + 1];
      std::uint64_t prev_era = global_era_.value.load(std::memory_order_seq_cst);
      do {  // bounded by the number of in-flight threads (Lemma 2)
        // Second internal reservation: keeps the dereferenced block alive
        // through the handover to the requester (Lemma 5).
        handover_rsv.store_a(prev_era, std::memory_order_seq_cst);
        const std::uintptr_t ret = ptr->load(std::memory_order_acquire);
        const std::uint64_t new_era = global_era_.value.load(std::memory_order_seq_cst);
        if (prev_era == new_era) {
          util::Pair expect = res;
          if (st.result.wcas(expect, {ret, new_era})) {
            // Install the reservation on the requester's behalf; at most
            // two iterations (Lemma 3).  A tag change means the requester
            // already moved on — leave its reservation alone.
            for (;;) {
              util::Pair old = slots_[i].resv[j].load_pair(std::memory_order_seq_cst);
              if (old.b != tag) break;
              if (slots_[i].resv[j].wcas(old, {new_era, tag + 1})) break;
            }
          }
          break;
        }
        prev_era = new_era;
      } while (st.result.load_pair(std::memory_order_seq_cst) == res);
      handover_rsv.store_a(kInfEra, std::memory_order_seq_cst);
    }
    parent_rsv.store_a(kInfEra, std::memory_order_seq_cst);
  }

  /// cleanup() — Fig. 4 lines 56-67, implementing the scanning discipline
  /// of Lemmas 4/5: application slots, then the parent slot; and — unless
  /// no helper can be active (ce == counter_start) — the handover slot
  /// followed by the application slots *again* (opposite order).
  void cleanup(unsigned tid) noexcept {
    sweep_retired(tid, [this](const Block* b) {
      const std::uint64_t ce = counter_end_.value.load(std::memory_order_seq_cst);
      if (!can_delete(b, 0, cfg_.max_hes) ||
          !can_delete(b, cfg_.max_hes, cfg_.max_hes + 1)) {
        return false;
      }
      if (ce == counter_start_.value.load(std::memory_order_seq_cst)) return true;
      return can_delete(b, cfg_.max_hes + 1, cfg_.max_hes + 2) &&
             can_delete(b, 0, cfg_.max_hes);
    });
  }

  bool can_delete(const Block* b, unsigned js, unsigned je) const noexcept {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned j = js; j < je; ++j) {
        const std::uint64_t e = slots_[t].resv[j].load_a(std::memory_order_seq_cst);
        if (reclaim::era_overlaps(b, e)) return false;
      }
    }
    return true;
  }

  /// Both slow-path exits funnel here: record the episode's duration and
  /// tag the thread's current op for slow-op trace attribution.
  void finish_slow_probe(std::uint64_t t0, unsigned tid) noexcept {
    if (slow_path_hist_ == nullptr) return;
    obs::tls_cause = obs::TraceCause::kSlowPath;
    slow_path_hist_->record_owned(obs::ticks_to_ns(obs::now_ticks() - t0), tid);
  }

  reclaim::detail::PerThread<Slots> slots_;
  util::Padded<std::atomic<std::uint64_t>> global_era_{1};
  util::Padded<std::atomic<std::uint64_t>> counter_start_{0};
  util::Padded<std::atomic<std::uint64_t>> counter_end_{0};
  obs::LatencyHistogram* slow_path_hist_ = nullptr;  ///< null = unprobed
};

static_assert(reclaim::tracker_for<WfeTracker>);

}  // namespace wfe::core
